// Cholesky: the paper's motivating use case. Sparse direct solvers such as
// MUMPS (§V) call dense BLAS-3 kernels on frontal matrices; XKBLAS'
// asynchronous composition lets the TRSM panels and SYRK/GEMM updates of a
// blocked right-looking Cholesky factorization overlap across panels,
// exactly like the TRSM+GEMM benchmark of §IV-F.
//
// The small diagonal-block factorizations (POTF2) run on the host; each
// panel makes only its diagonal tile coherent, factorizes it, and
// republishes it — everything else stays on the GPUs.
//
//	go run ./examples/cholesky
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"xkblas"
)

// potf2 factorizes the dense SPD block a (column-major view) in place into
// its lower Cholesky factor.
func potf2(a xkblas.View) error {
	n := a.N
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= a.At(j, k) * a.At(j, k)
		}
		if d <= 0 {
			return fmt.Errorf("potf2: not positive definite at column %d", j)
		}
		d = math.Sqrt(d)
		a.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= a.At(i, k) * a.At(j, k)
			}
			a.Set(i, j, s/d)
		}
		for i := 0; i < j; i++ {
			a.Set(i, j, 0)
		}
	}
	return nil
}

func main() {
	const n, nb = 256, 64
	rng := rand.New(rand.NewSource(11))

	// Build an SPD matrix A = M·Mᵀ + n·I and keep a copy for the residual.
	m := xkblas.NewMatrix(n, n)
	m.FillRandom(rng)
	a := xkblas.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += m.At(i, k) * m.At(j, k)
			}
			if i == j {
				s += float64(n)
			}
			a.Set(i, j, s)
		}
	}
	orig := a.Clone()

	h := xkblas.New(xkblas.Config{TileSize: nb, Functional: true})
	A := h.Register(a)
	nt := A.Rows()
	til := A.Til

	t0 := h.Now()
	for k := 0; k < nt; k++ {
		// Panel: factorize the diagonal tile on the host. Only this tile
		// round-trips; the trailing matrix stays distributed on the GPUs.
		diag := A.Tile(k, k)
		h.FlushTileAsync(diag)
		h.Sync()
		if err := potf2(til.TileView(a, k, k)); err != nil {
			log.Fatal(err)
		}
		h.InvalidateTile(diag) // republish the host version

		if k+1 < nt {
			// TRSM panel + trailing update compose asynchronously; the
			// next panel's coherency point naturally waits for its tile's
			// last writer.
			panel := h.SubMatrix(A, k+1, k, nt-(k+1), 1)
			diagM := h.SubMatrix(A, k, k, 1, 1)
			h.TrsmAsync(xkblas.Right, xkblas.Lower, xkblas.Transpose, xkblas.NonUnit, 1, diagM, panel)
			trail := h.SubMatrix(A, k+1, k+1, nt-(k+1), nt-(k+1))
			h.SyrkAsync(xkblas.Lower, xkblas.NoTrans, -1, panel, 1, trail)
		}
	}
	h.MemoryCoherentAsync(A)
	elapsed := h.Sync() - t0

	// Residual check: L·Lᵀ ≈ A on the lower triangle.
	maxDiff := 0.0
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			s := 0.0
			for k := 0; k <= j; k++ {
				s += a.At(i, k) * a.At(j, k)
			}
			if d := math.Abs(s - orig.At(i, j)); d > maxDiff {
				maxDiff = d
			}
		}
	}
	fmt.Printf("blocked Cholesky n=%d nb=%d: %.6fs virtual on 8 simulated V100s\n",
		n, nb, float64(elapsed))
	fmt.Printf("max |L·Lᵀ - A| = %.3g\n", maxDiff)
	if maxDiff > 1e-8 {
		log.Fatal("factorization residual too large")
	}
	fmt.Println("factorization verified ✓")
}
