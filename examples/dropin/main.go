// Drop-in: a legacy application holding plain column-major slices calls
// the synchronous wrappers, exactly like linking against the NVBLAS-style
// interposition library the paper describes (§IV-D). No data-structure
// changes: LAPACK layout in, LAPACK layout out, results coherent on
// return.
//
// The "application" here solves A·X = B for a diagonally dominant lower
// factor and then forms the residual R = B₀ - A·X to show it is tiny.
//
//	go run ./examples/dropin
package main

import (
	"fmt"
	"math"
	"math/rand"

	"xkblas"
)

func main() {
	const m, nrhs = 96, 8
	rng := rand.New(rand.NewSource(7))

	// Legacy data: column-major slices with leading dimension m.
	a := make([]float64, m*m) // lower triangular, diagonally dominant
	b := make([]float64, m*nrhs)
	for j := 0; j < m; j++ {
		for i := j; i < m; i++ {
			a[j*m+i] = 2*rng.Float64() - 1
			if i == j {
				a[j*m+i] += m
			}
		}
	}
	for i := range b {
		b[i] = 2*rng.Float64() - 1
	}
	b0 := append([]float64{}, b...)

	lib := &xkblas.DropIn{TileSize: 32}

	// X ← A⁻¹·B (in place in b).
	el1 := lib.Dtrsm(xkblas.Left, xkblas.Lower, xkblas.NoTrans, xkblas.NonUnit,
		m, nrhs, 1, a, m, b, m)

	// R ← B₀ - A·X via TRMM + AXPY on the host.
	ax := append([]float64{}, b...)
	el2 := lib.Dtrmm(xkblas.Left, xkblas.Lower, xkblas.NoTrans, xkblas.NonUnit,
		m, nrhs, 1, a, m, ax, m)
	var resid float64
	for i := range ax {
		if r := math.Abs(b0[i] - ax[i]); r > resid {
			resid = r
		}
	}

	fmt.Printf("DTRSM  m=%d nrhs=%d: %.6fs virtual\n", m, nrhs, float64(el1))
	fmt.Printf("DTRMM  m=%d nrhs=%d: %.6fs virtual\n", m, nrhs, float64(el2))
	fmt.Printf("max |B - A·X| = %.3g (solver residual)\n", resid)
	if resid > 1e-10 {
		fmt.Println("WARNING: residual larger than expected")
	} else {
		fmt.Println("solve verified ✓")
	}
}
