// Composition: the §IV-F scenario. A TRSM whose output feeds a GEMM
// composes through the XKaapi dependency graph without any host
// round-trip or synchronization point between the two calls; the trace
// shows the GEMM tiles starting while TRSM panels are still in flight.
//
//	go run ./examples/composition
package main

import (
	"fmt"
	"os"

	"xkblas"
)

func main() {
	const n, nb = 16384, 2048

	h := xkblas.New(xkblas.Config{TileSize: nb}) // timing mode
	rec := xkblas.AttachTrace(h)

	L := h.Register(xkblas.NewShape(n, n)) // lower-triangular factor
	B := h.Register(xkblas.NewShape(n, n)) // right-hand sides, overwritten by X
	C := h.Register(xkblas.NewShape(n, n))
	D := h.Register(xkblas.NewShape(n, n))

	t0 := h.Now()
	// Solve L·X = B in place...
	h.TrsmAsync(xkblas.Left, xkblas.Lower, xkblas.NoTrans, xkblas.NonUnit, 1, L, B)
	// ...and immediately consume X: D += X·C. No sync in between — the
	// runtime chains the dependencies tile by tile.
	h.GemmAsync(xkblas.NoTrans, xkblas.NoTrans, 1, B, C, 1, D)
	h.MemoryCoherentAsync(B)
	h.MemoryCoherentAsync(D)
	elapsed := h.Sync() - t0

	trsmFlops := float64(n) * float64(n) * float64(n)
	gemmFlops := 2 * float64(n) * float64(n) * float64(n)
	fmt.Printf("TRSM+GEMM composed, n=%d nb=%d: %.3fs virtual → %.2f TFlop/s\n",
		n, nb, float64(elapsed), (trsmFlops+gemmFlops)/float64(elapsed)/1e12)

	idle := rec.IdleRatio(8)
	var mean float64
	for _, x := range idle {
		mean += x / float64(len(idle))
	}
	fmt.Printf("mean kernel-lane idle ratio: %.1f%% (no inter-call gaps)\n\n", 100*mean)

	if err := rec.Gantt(os.Stdout, 8, 100); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
