package xkblas_test

import (
	"math"
	"math/rand"
	"testing"

	"xkblas"
)

func fill(rng *rand.Rand, xs []float64) {
	for i := range xs {
		xs[i] = 2*rng.Float64() - 1
	}
}

// naive C = alpha·op(A)op(B) + beta·C on column-major slices.
func naiveGemm(ta, tb xkblas.Trans, m, n, k int, alpha float64, a []float64, lda int,
	b []float64, ldb int, beta float64, c []float64, ldc int) {
	at := func(i, l int) float64 {
		if ta == xkblas.NoTrans {
			return a[l*lda+i]
		}
		return a[i*lda+l]
	}
	bt := func(l, j int) float64 {
		if tb == xkblas.NoTrans {
			return b[j*ldb+l]
		}
		return b[l*ldb+j]
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			s := 0.0
			for l := 0; l < k; l++ {
				s += at(i, l) * bt(l, j)
			}
			c[j*ldc+i] = alpha*s + beta*c[j*ldc+i]
		}
	}
}

func TestPublicAsyncAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 48
	h := xkblas.New(xkblas.Config{TileSize: 16, Functional: true})
	av, bv, cv := xkblas.NewMatrix(n, n), xkblas.NewMatrix(n, n), xkblas.NewMatrix(n, n)
	fill(rng, av.Data)
	fill(rng, bv.Data)
	fill(rng, cv.Data)
	want := append([]float64{}, cv.Data...)
	naiveGemm(xkblas.NoTrans, xkblas.NoTrans, n, n, n, 1, av.Data, n, bv.Data, n, 1, want, n)

	A, B, C := h.Register(av), h.Register(bv), h.Register(cv)
	h.GemmAsync(xkblas.NoTrans, xkblas.NoTrans, 1, A, B, 1, C)
	h.MemoryCoherentAsync(C)
	elapsed := h.Sync()
	if elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	for i := range want {
		if math.Abs(cv.Data[i]-want[i]) > 1e-10 {
			t.Fatalf("mismatch at %d: %g vs %g", i, cv.Data[i], want[i])
		}
	}
}

func TestDropInDgemm(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, n, k := 33, 21, 27
	lda, ldb, ldc := m+2, k+1, m
	a := make([]float64, lda*k)
	b := make([]float64, ldb*n)
	c := make([]float64, ldc*n)
	fill(rng, a)
	fill(rng, b)
	fill(rng, c)
	want := append([]float64{}, c...)
	naiveGemm(xkblas.NoTrans, xkblas.NoTrans, m, n, k, 0.5, a, lda, b, ldb, 2, want, ldc)

	lib := &xkblas.DropIn{TileSize: 8}
	el := lib.Dgemm(xkblas.NoTrans, xkblas.NoTrans, m, n, k, 0.5, a, lda, b, ldb, 2, c, ldc)
	if el <= 0 {
		t.Fatal("no virtual time reported")
	}
	for i := range want {
		if math.Abs(c[i]-want[i]) > 1e-10 {
			t.Fatalf("mismatch at %d: %g vs %g", i, c[i], want[i])
		}
	}
}

func TestDropInDtrsmRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, n := 24, 17
	a := make([]float64, m*m)
	b := make([]float64, m*n)
	fill(rng, a)
	for i := 0; i < m; i++ {
		a[i*m+i] += float64(m) + 4 // diagonal dominance
	}
	fill(rng, b)
	orig := append([]float64{}, b...)

	lib := &xkblas.DropIn{TileSize: 8}
	lib.Dtrsm(xkblas.Left, xkblas.Lower, xkblas.NoTrans, xkblas.NonUnit, m, n, 3, a, m, b, m)
	lib.Dtrmm(xkblas.Left, xkblas.Lower, xkblas.NoTrans, xkblas.NonUnit, m, n, 1, a, m, b, m)
	for i := range b {
		if math.Abs(b[i]-3*orig[i]) > 1e-7 {
			t.Fatalf("trsm/trmm round-trip failed at %d: %g vs %g", i, b[i], 3*orig[i])
		}
	}
}

func TestDropInSymmetricRoutines(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, k := 19, 23
	a := make([]float64, n*k)
	b := make([]float64, n*k)
	c := make([]float64, n*n)
	fill(rng, a)
	fill(rng, b)
	fill(rng, c)
	cRef := append([]float64{}, c...)

	lib := &xkblas.DropIn{TileSize: 8}
	lib.Dsyr2k(xkblas.Lower, xkblas.NoTrans, n, k, 1.5, a, n, b, n, 0.5, c, n)

	// Reference: full product then compare stored triangle.
	abt := make([]float64, n*n)
	naiveGemm(xkblas.NoTrans, xkblas.Transpose, n, n, k, 1, a, n, b, n, 0, abt, n)
	bat := make([]float64, n*n)
	naiveGemm(xkblas.NoTrans, xkblas.Transpose, n, n, k, 1, b, n, a, n, 0, bat, n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			want := 1.5*(abt[j*n+i]+bat[j*n+i]) + 0.5*cRef[j*n+i]
			if math.Abs(c[j*n+i]-want) > 1e-9 {
				t.Fatalf("syr2k mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestPlatformConstructors(t *testing.T) {
	if xkblas.DGX1().NumGPUs != 8 {
		t.Error("DGX1 should have 8 GPUs")
	}
	if xkblas.DGX1WithGPUs(4).NumGPUs != 4 {
		t.Error("DGX1WithGPUs(4) wrong")
	}
	if xkblas.SummitNode().NumGPUs != 6 {
		t.Error("SummitNode should have 6 GPUs")
	}
	opt := xkblas.DefaultOptions()
	if !opt.TopoAware || !opt.Optimistic {
		t.Error("default options must enable the paper's heuristics")
	}
}
