package xkblas_test

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"xkblas"
)

// Public-API coverage of the extension layers: factorizations, complex
// routines and sub-matrices, all through the xkblas facade.

func TestPublicPotrf(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	const n, nb = 48, 16
	h := xkblas.New(xkblas.Config{TileSize: nb, Functional: true})

	// SPD matrix.
	m := xkblas.NewMatrix(n, n)
	m.FillRandom(rng)
	a := xkblas.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += m.At(i, k) * m.At(j, k)
			}
			if i == j {
				s += n
			}
			a.Set(i, j, s)
		}
	}
	orig := a.Clone()

	A := h.Register(a)
	h.PotrfAsync(xkblas.Lower, A)
	h.MemoryCoherentAsync(A)
	h.Sync()

	// L·Lᵀ ≈ A on the lower triangle.
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			s := 0.0
			for k := 0; k <= j; k++ {
				s += a.At(i, k) * a.At(j, k)
			}
			if math.Abs(s-orig.At(i, j)) > 1e-8 {
				t.Fatalf("residual at (%d,%d)", i, j)
			}
		}
	}
}

func TestPublicComplexRoutines(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	const n, nb = 24, 8
	h := xkblas.New(xkblas.Config{TileSize: nb, Functional: true})
	az := xkblas.NewZMat(n, n)
	az.FillRandom(rng)
	cz := xkblas.NewZMat(n, n)

	A := h.RegisterZ(az)
	C := h.RegisterZ(cz)
	h.ZherkAsync(xkblas.Lower, xkblas.NoTrans, 1, A, 0, C)
	h.MemoryCoherentAsync(C)
	h.Sync()

	// Spot-check C[1,0] = Σ_k A[1,k]·conj(A[0,k]).
	var want complex128
	for k := 0; k < n; k++ {
		want += az.At(1, k) * cmplx.Conj(az.At(0, k))
	}
	if cmplx.Abs(cz.At(1, 0)-want) > 1e-10 {
		t.Fatalf("HERK C[1,0] = %v, want %v", cz.At(1, 0), want)
	}
	if imag(cz.At(3, 3)) != 0 {
		t.Fatal("HERK diagonal must be real")
	}
}

func TestPublicSubMatrixComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	const n, nb = 32, 8
	h := xkblas.New(xkblas.Config{TileSize: nb, Functional: true})
	a := xkblas.NewMatrix(n, n)
	a.FillRandom(rng)
	A := h.Register(a)

	// Square the top-left quadrant into the bottom-right quadrant through
	// tile-aligned sub-matrices.
	tl := h.SubMatrix(A, 0, 0, 2, 2)
	br := h.SubMatrix(A, 2, 2, 2, 2)
	origTL := a.Sub(0, 0, 16, 16).Clone()
	h.GemmAsync(xkblas.NoTrans, xkblas.NoTrans, 1, tl, tl, 0, br)
	h.MemoryCoherentAsync(A)
	h.Sync()

	for j := 0; j < 16; j++ {
		for i := 0; i < 16; i++ {
			s := 0.0
			for k := 0; k < 16; k++ {
				s += origTL.At(i, k) * origTL.At(k, j)
			}
			if math.Abs(a.At(16+i, 16+j)-s) > 1e-10 {
				t.Fatalf("sub-matrix gemm wrong at (%d,%d)", i, j)
			}
		}
	}
}

func TestPublicPinning(t *testing.T) {
	h := xkblas.New(xkblas.Config{TileSize: 1024})
	m := h.Register(xkblas.NewShape(4096, 4096))
	t0 := h.Now()
	h.PinAsync(m)
	if h.Sync() <= t0 {
		t.Fatal("pinning must consume virtual time")
	}
}

func TestPublicPlatformZoo(t *testing.T) {
	if xkblas.DGX2().NumGPUs != 16 {
		t.Error("DGX2 should have 16 GPUs")
	}
	if xkblas.DGX2WithGPUs(4).NumGPUs != 4 {
		t.Error("DGX2WithGPUs(4) wrong")
	}
	// A library context works on every platform.
	for _, plat := range []*xkblas.Platform{
		xkblas.DGX1(), xkblas.DGX2WithGPUs(8), xkblas.SummitNode(),
	} {
		h := xkblas.New(xkblas.Config{Platform: plat, TileSize: 1024})
		a := h.Register(xkblas.NewShape(4096, 4096))
		b := h.Register(xkblas.NewShape(4096, 4096))
		c := h.Register(xkblas.NewShape(4096, 4096))
		h.GemmAsync(xkblas.NoTrans, xkblas.NoTrans, 1, a, b, 1, c)
		h.MemoryCoherentAsync(c)
		if h.Sync() <= 0 {
			t.Errorf("%s: no virtual time elapsed", plat.Name)
		}
	}
}
