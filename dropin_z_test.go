package xkblas_test

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"xkblas"
)

func fillZ(rng *rand.Rand, xs []complex128) {
	for i := range xs {
		xs[i] = complex(2*rng.Float64()-1, 2*rng.Float64()-1)
	}
}

func naiveZgemm(ta, tb xkblas.Trans, m, n, k int, alpha complex128, a []complex128, lda int,
	b []complex128, ldb int, beta complex128, c []complex128, ldc int) {
	op := func(t xkblas.Trans, x []complex128, ld, i, j int) complex128 {
		switch t {
		case xkblas.NoTrans:
			return x[j*ld+i]
		case xkblas.Transpose:
			return x[i*ld+j]
		default: // ConjTrans
			return cmplx.Conj(x[i*ld+j])
		}
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			var s complex128
			for l := 0; l < k; l++ {
				s += op(ta, a, lda, i, l) * op(tb, b, ldb, l, j)
			}
			c[j*ldc+i] = alpha*s + beta*c[j*ldc+i]
		}
	}
}

func TestDropInZgemm(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	m, n, k := 18, 14, 22
	a := make([]complex128, m*k)
	b := make([]complex128, n*k) // stored as Bᴴ operand: n rows, k cols
	c := make([]complex128, m*n)
	fillZ(rng, a)
	fillZ(rng, b)
	fillZ(rng, c)
	want := append([]complex128{}, c...)
	alpha, beta := complex(0.8, -0.3), complex(1.1, 0.4)
	naiveZgemm(xkblas.NoTrans, xkblas.ConjTrans, m, n, k, alpha, a, m, b, n, beta, want, m)

	lib := &xkblas.DropIn{TileSize: 8}
	el := lib.Zgemm(xkblas.NoTrans, xkblas.ConjTrans, m, n, k, alpha, a, m, b, n, beta, c, m)
	if el <= 0 {
		t.Fatal("no virtual time reported")
	}
	for i := range want {
		if cmplx.Abs(c[i]-want[i]) > 1e-10 {
			t.Fatalf("mismatch at %d: %v vs %v", i, c[i], want[i])
		}
	}
}

func TestDropInZherkHermitianResult(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	n, k := 17, 12
	a := make([]complex128, n*k)
	c := make([]complex128, n*n)
	fillZ(rng, a)
	// Hermitian prior C.
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			x := complex(2*rng.Float64()-1, 2*rng.Float64()-1)
			if i == j {
				x = complex(real(x), 0)
			}
			c[j*n+i] = x
			c[i*n+j] = cmplx.Conj(x)
		}
	}
	want := append([]complex128{}, c...)
	// Reference via naive A·Aᴴ restricted to the lower triangle.
	full := make([]complex128, n*n)
	ah := make([]complex128, k*n)
	for j := 0; j < n; j++ {
		for i := 0; i < k; i++ {
			ah[j*k+i] = a[i*n+j] // Aᵀ...
		}
	}
	_ = ah
	naiveZgemm(xkblas.NoTrans, xkblas.ConjTrans, n, n, k, 1, a, n, a, n, 0, full, n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			v := complex(0.9, 0)*full[j*n+i] + complex(0.5, 0)*want[j*n+i]
			if i == j {
				v = complex(real(v), 0)
			}
			want[j*n+i] = v
		}
	}

	lib := &xkblas.DropIn{TileSize: 8}
	lib.Zherk(xkblas.Lower, xkblas.NoTrans, n, k, 0.9, a, n, 0.5, c, n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			if cmplx.Abs(c[j*n+i]-want[j*n+i]) > 1e-10 {
				t.Fatalf("mismatch at (%d,%d): %v vs %v", i, j, c[j*n+i], want[j*n+i])
			}
		}
		if imag(c[j*n+j]) != 0 {
			t.Fatalf("diagonal (%d,%d) not real: %v", j, j, c[j*n+j])
		}
	}
}

func TestDropInZhemmZher2kSmoke(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n, k := 12, 9
	lib := &xkblas.DropIn{TileSize: 4}

	a := make([]complex128, n*n)
	b := make([]complex128, n*n)
	c := make([]complex128, n*n)
	fillZ(rng, a)
	fillZ(rng, b)
	fillZ(rng, c)
	if el := lib.Zhemm(xkblas.Left, xkblas.Upper, n, n, 1, a, n, b, n, 0, c, n); el <= 0 {
		t.Fatal("zhemm reported no time")
	}

	a2 := make([]complex128, n*k)
	b2 := make([]complex128, n*k)
	c2 := make([]complex128, n*n)
	fillZ(rng, a2)
	fillZ(rng, b2)
	if el := lib.Zher2k(xkblas.Lower, xkblas.NoTrans, n, k, complex(1, 1), a2, n, b2, n, 1, c2, n); el <= 0 {
		t.Fatal("zher2k reported no time")
	}
	for j := 0; j < n; j++ {
		if imag(c2[j*n+j]) != 0 {
			t.Fatal("zher2k diagonal not real")
		}
	}
}

func TestDropInDsymmDsyrk(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	n, k := 15, 11
	lib := &xkblas.DropIn{TileSize: 4}

	// DSYMM against a naive symmetric product.
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	c := make([]float64, n*n)
	for i := range a {
		a[i] = rng.Float64()
		b[i] = rng.Float64()
		c[i] = rng.Float64()
	}
	// Symmetrize a fully so both triangles agree (DSYMM reads one).
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			a[j*n+i] = a[i*n+j]
		}
	}
	want := append([]float64{}, c...)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			s := 0.0
			for l := 0; l < n; l++ {
				s += a[l*n+i] * b[j*n+l]
			}
			want[j*n+i] = 0.5*s + 2*want[j*n+i]
		}
	}
	lib.Dsymm(xkblas.Left, xkblas.Lower, n, n, 0.5, a, n, b, n, 2, c, n)
	for i := range want {
		if diff := c[i] - want[i]; diff > 1e-10 || diff < -1e-10 {
			t.Fatalf("dsymm mismatch at %d: %g vs %g", i, c[i], want[i])
		}
	}

	// DSYRK lower triangle against naive A·Aᵀ.
	a2 := make([]float64, n*k)
	c2 := make([]float64, n*n)
	for i := range a2 {
		a2[i] = rng.Float64()
	}
	for i := range c2 {
		c2[i] = rng.Float64()
	}
	want2 := append([]float64{}, c2...)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			s := 0.0
			for l := 0; l < k; l++ {
				s += a2[l*n+i] * a2[l*n+j]
			}
			want2[j*n+i] = 1.5*s + 0.5*want2[j*n+i]
		}
	}
	lib.Dsyrk(xkblas.Lower, xkblas.NoTrans, n, k, 1.5, a2, n, 0.5, c2, n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			if diff := c2[j*n+i] - want2[j*n+i]; diff > 1e-10 || diff < -1e-10 {
				t.Fatalf("dsyrk mismatch at (%d,%d)", i, j)
			}
		}
		// Strict upper untouched.
		for i := 0; i < j; i++ {
			if c2[j*n+i] != want2[j*n+i] {
				t.Fatal("dsyrk touched the upper triangle")
			}
		}
	}
}
